//! The 20-workload evaluation suite (paper §V-B).
//!
//! * 5 backend-intensive (`be0`–`be4`): 5–6 apps from the backend-bound
//!   group, remainder from "others";
//! * 5 frontend-intensive (`fe0`–`fe4`): most apps from the frontend-bound
//!   group, remainder from "others";
//! * 10 mixed (`fb0`–`fb9`): half backend-bound, half frontend-bound.
//!
//! Three workloads are pinned to the exact mixes the paper publishes so the
//! case-study experiments reproduce app-for-app: `be1` and `fe2` (Fig. 6a/6b)
//! and `fb2` (Fig. 6c, Fig. 7, Table V). The rest are drawn with a seeded
//! RNG following the paper's recipe; duplicates are allowed (the paper's
//! `fb2` contains `mcf` and `leela_r` twice).

use crate::classify::Group;
use crate::spec::group_members;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// 5-6 backend-bound apps, remainder from "others".
    BackendIntensive,
    /// 5-6 frontend-bound apps, remainder from "others".
    FrontendIntensive,
    /// Half backend-bound, half frontend-bound.
    Mixed,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::BackendIntensive => write!(f, "backend"),
            WorkloadKind::FrontendIntensive => write!(f, "frontend"),
            WorkloadKind::Mixed => write!(f, "mixed"),
        }
    }
}

/// An 8-application workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Suite name (`be0`..`fb9`).
    pub name: String,
    /// Workload family.
    pub kind: WorkloadKind,
    /// Application names in arrival order (position = the paper's bracketed
    /// index, e.g. `leela_r(04)` is `apps[4]`).
    pub apps: Vec<String>,
    /// Per-app arrival cycle, parallel to `apps`. Empty means every app
    /// arrives at cycle 0 (the paper's methodology). Non-zero arrivals are
    /// honoured at the first quantum boundary at or after the cycle, and
    /// each app's turnaround time is measured from its arrival. Apps
    /// sharing an arrival cycle form one *wave*; waves may be any size,
    /// including odd — a core then runs a single thread until the pairing
    /// policies find it a partner.
    pub arrivals: Vec<u64>,
    /// Per-app launch-target scale, parallel to `apps`. Empty means every
    /// app keeps its calibrated target (scale 1.0, the paper's
    /// methodology). Calibration still measures each app in isolation over
    /// the standard window; the scale then multiplies the resulting target,
    /// so a heterogeneous workload mixes short and long launches on one
    /// chip — short apps complete and relaunch early while long apps keep
    /// running, decorrelating per-core activity.
    pub target_scale: Vec<f64>,
}

impl Workload {
    /// Arrival cycle of app `k` (0 when arrivals are unset).
    pub fn arrival(&self, k: usize) -> u64 {
        self.arrivals.get(k).copied().unwrap_or(0)
    }

    /// Launch-target scale of app `k` (1.0 when scales are unset).
    pub fn target_scale(&self, k: usize) -> f64 {
        self.target_scale.get(k).copied().unwrap_or(1.0)
    }
}

/// Number of applications per workload.
pub const WORKLOAD_SIZE: usize = 8;

fn pick(rng: &mut StdRng, pool: &[String]) -> String {
    pool[rng.random_range(0..pool.len())].clone()
}

/// The paper's family recipes, generalized to any even workload size. The
/// "intensive" families keep the paper's 5/8–6/8 dominant-group fraction
/// (drawn with one coin flip, so the size-8 RNG stream is unchanged);
/// `Mixed` splits the size evenly between the two bound groups.
fn sized_workload(rng: &mut StdRng, kind: WorkloadKind, size: usize) -> Vec<String> {
    assert!(
        size >= 2 && size % 2 == 0,
        "workload size must be even (SMT2 pairing), got {size}"
    );
    let mut apps: Vec<String> = match kind {
        WorkloadKind::BackendIntensive | WorkloadKind::FrontendIntensive => {
            let dominant = group_members(if kind == WorkloadKind::BackendIntensive {
                Group::BackendBound
            } else {
                Group::FrontendBound
            });
            let others = group_members(Group::Others);
            let n_dom = if rng.random_bool(0.5) {
                size * 5 / 8
            } else {
                size * 6 / 8
            };
            let mut apps: Vec<String> = (0..n_dom).map(|_| pick(rng, &dominant)).collect();
            while apps.len() < size {
                apps.push(pick(rng, &others));
            }
            apps
        }
        WorkloadKind::Mixed => {
            let be = group_members(Group::BackendBound);
            let fe = group_members(Group::FrontendBound);
            let mut apps: Vec<String> = (0..size / 2).map(|_| pick(rng, &be)).collect();
            apps.extend((0..size / 2).map(|_| pick(rng, &fe)));
            apps
        }
    };
    // Arrival order is random (the paper launches randomly built mixes; the
    // Linux baseline pairs by arrival, so order matters).
    apps.shuffle(rng);
    apps
}

fn backend_workload(rng: &mut StdRng) -> Vec<String> {
    sized_workload(rng, WorkloadKind::BackendIntensive, WORKLOAD_SIZE)
}

fn frontend_workload(rng: &mut StdRng) -> Vec<String> {
    sized_workload(rng, WorkloadKind::FrontendIntensive, WORKLOAD_SIZE)
}

fn mixed_workload(rng: &mut StdRng) -> Vec<String> {
    sized_workload(rng, WorkloadKind::Mixed, WORKLOAD_SIZE)
}

/// Composes one randomized workload of `size` applications (must be even)
/// from the profiled app pool, following `kind`'s family recipe.
/// Deterministic per `(kind, size, seed)`.
pub fn random_workload(name: &str, kind: WorkloadKind, size: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    Workload {
        name: name.to_string(),
        kind,
        apps: sized_workload(&mut rng, kind, size),
        arrivals: Vec::new(),
        target_scale: Vec::new(),
    }
}

/// A partial-occupancy workload: `occupied` applications destined for a
/// chip with `slots` hardware threads, leaving `slots - occupied` slots —
/// and in particular whole cores — empty for the entire run. This is the
/// regime where per-core horizon batching shines: idle cores cost the
/// simulator nothing while their neighbours stay busy. Deterministic per
/// `(kind, occupied, seed)`; `occupied` must be even and at most `slots`.
pub fn partial_occupancy_workload(
    name: &str,
    kind: WorkloadKind,
    occupied: usize,
    slots: usize,
    seed: u64,
) -> Workload {
    assert!(
        occupied <= slots,
        "partial occupancy needs occupied ({occupied}) <= slots ({slots})"
    );
    random_workload(name, kind, occupied, seed)
}

/// A phase-shifted-arrival workload: `size` applications arriving in
/// `waves` equal even-sized groups, wave *i* at cycle `i * wave_gap`. The
/// machine fills up in waves — early cores run while late cores sit empty,
/// then the overlap shifts as early apps finish first — so core activity
/// is deliberately decorrelated across the chip (the case the per-core
/// horizon engine is built for, and a scheduling regime the fixed
/// 8-apps-at-once suite never exercises).
pub fn phase_shifted_workload(
    name: &str,
    kind: WorkloadKind,
    size: usize,
    waves: usize,
    wave_gap: u64,
    seed: u64,
) -> Workload {
    assert!(waves >= 1, "need at least one wave");
    assert!(
        size % waves == 0 && (size / waves) % 2 == 0,
        "waves must be equal and even-sized: {size} apps / {waves} waves"
    );
    let mut w = random_workload(name, kind, size, seed);
    let per_wave = size / waves;
    w.arrivals = (0..size)
        .map(|k| (k / per_wave) as u64 * wave_gap)
        .collect();
    w
}

/// A heterogeneous-launch-target workload: the same app mix as
/// [`random_workload`] for the same `(kind, size, seed)`, with per-app
/// launch targets alternating `small`/`large` multiples of the calibrated
/// target in arrival order. Half the chip runs short launches that
/// complete and relaunch early while the other half runs long ones, so
/// completion traffic, relaunch phases and per-core activity stay
/// decorrelated for the entire run — the ROADMAP's "heterogeneous launch
/// targets" regime, and a steady source of mid-burst completion parks for
/// the burst engine. Scales layer on top of the app mix (they do not
/// disturb the RNG stream), mirroring how arrivals are layered.
pub fn heterogeneous_workload(
    name: &str,
    kind: WorkloadKind,
    size: usize,
    small: f64,
    large: f64,
    seed: u64,
) -> Workload {
    assert!(
        small > 0.0 && large > 0.0,
        "launch-target scales must be positive: {small}/{large}"
    );
    let mut w = random_workload(name, kind, size, seed);
    w.target_scale = (0..size)
        .map(|k| if k % 2 == 0 { small } else { large })
        .collect();
    w
}

/// A randomized full-chip suite: `count` workloads of `size` applications
/// each (`fc0`, `fc1`, ...), cycling mixed → backend → frontend so every
/// family exercises the dense synergy graph. With `size = 56` this is the
/// 28-core ThunderX2 regime the paper targets.
pub fn full_chip_suite(count: usize, size: usize, seed: u64) -> Vec<Workload> {
    let kinds = [
        WorkloadKind::Mixed,
        WorkloadKind::BackendIntensive,
        WorkloadKind::FrontendIntensive,
    ];
    (0..count)
        .map(|i| {
            random_workload(
                &format!("fc{i}"),
                kinds[i % kinds.len()],
                size,
                seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

fn owned(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// The full 20-workload suite: `be0..be4`, `fe0..fe4`, `fb0..fb9`.
pub fn standard_suite() -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(0x57A6_D00D);
    let mut out = Vec::with_capacity(20);
    for i in 0..5 {
        let apps = if i == 1 {
            // Fig. 6a: workload be1.
            owned(&[
                "cactuBSSN_r",
                "mcf",
                "mcf",
                "milc",
                "cactuBSSN_r",
                "parest_r",
                "cam4_r",
                "imagick_r",
            ])
        } else {
            backend_workload(&mut rng)
        };
        out.push(Workload {
            name: format!("be{i}"),
            kind: WorkloadKind::BackendIntensive,
            apps,
            arrivals: Vec::new(),
            target_scale: Vec::new(),
        });
    }
    for i in 0..5 {
        let apps = if i == 2 {
            // Fig. 6b: workload fe2.
            owned(&[
                "leela_r",
                "gobmk",
                "gobmk",
                "leela_r",
                "perlbench",
                "cam4_r",
                "leela_r",
                "povray_r",
            ])
        } else {
            frontend_workload(&mut rng)
        };
        out.push(Workload {
            name: format!("fe{i}"),
            kind: WorkloadKind::FrontendIntensive,
            apps,
            arrivals: Vec::new(),
            target_scale: Vec::new(),
        });
    }
    for i in 0..10 {
        let apps = if i == 2 {
            // Fig. 6c / Fig. 7 / Table V: workload fb2, in the paper's
            // arrival order (§VI-C).
            owned(&[
                "lbm_r",
                "mcf",
                "cactuBSSN_r",
                "mcf",
                "leela_r",
                "leela_r",
                "astar",
                "mcf_r",
            ])
        } else {
            mixed_workload(&mut rng)
        };
        out.push(Workload {
            name: format!("fb{i}"),
            kind: WorkloadKind::Mixed,
            apps,
            arrivals: Vec::new(),
            target_scale: Vec::new(),
        });
    }
    out
}

/// Looks up one workload of the standard suite by name.
pub fn by_name(name: &str) -> Option<Workload> {
    standard_suite().into_iter().find(|w| w.name == name)
}

/// A seeded open-system arrival trace: application `apps[k]` arrives at
/// cycle `arrivals[k]` (non-decreasing). Unlike a [`Workload`] — a closed
/// batch that runs to collective completion — a trace feeds the admission
/// queue of the open-system scheduler service, where apps stream in,
/// finish their single launch, and leave. Built by [`poisson_trace`] and
/// [`bursty_trace`]; deterministic per `(kind, count, rate params, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Trace name (shows up in result tables).
    pub name: String,
    /// App-mix family the per-arrival draws follow.
    pub kind: WorkloadKind,
    /// Application names in arrival order.
    pub apps: Vec<String>,
    /// Arrival cycle per app, parallel to `apps`, non-decreasing.
    pub arrivals: Vec<u64>,
}

impl ArrivalTrace {
    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// `true` when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Cycle of the last arrival (0 for an empty trace).
    pub fn span(&self) -> u64 {
        self.arrivals.last().copied().unwrap_or(0)
    }

    /// The trace as a [`Workload`], so [`prepare_workload`]-style
    /// calibration drivers work unchanged on open-system inputs.
    ///
    /// [`prepare_workload`]: https://docs.rs/synpa-sched
    pub fn to_workload(&self) -> Workload {
        Workload {
            name: self.name.clone(),
            kind: self.kind,
            apps: self.apps.clone(),
            arrivals: self.arrivals.clone(),
            target_scale: Vec::new(),
        }
    }
}

/// One app drawn per arrival, following `kind`'s family recipe: the
/// "intensive" families pick the dominant group with probability 11/16
/// (the midpoint of the paper's 5/8–6/8 fraction), `Mixed` flips a fair
/// coin between the two bound groups.
fn trace_app(rng: &mut StdRng, kind: WorkloadKind) -> String {
    match kind {
        WorkloadKind::BackendIntensive | WorkloadKind::FrontendIntensive => {
            let dominant = group_members(if kind == WorkloadKind::BackendIntensive {
                Group::BackendBound
            } else {
                Group::FrontendBound
            });
            if rng.random_bool(11.0 / 16.0) {
                pick(rng, &dominant)
            } else {
                pick(rng, &group_members(Group::Others))
            }
        }
        WorkloadKind::Mixed => {
            if rng.random_bool(0.5) {
                pick(rng, &group_members(Group::BackendBound))
            } else {
                pick(rng, &group_members(Group::FrontendBound))
            }
        }
    }
}

/// One exponential inter-arrival gap with the given mean, by inverse CDF.
/// `1 - U` keeps the logarithm's argument in `(0, 1]`.
fn exp_gap(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// A Poisson arrival trace: `count` applications with exponential
/// inter-arrival gaps of mean `mean_gap_cycles`. Offered load scales as
/// `1 / mean_gap_cycles`; sweeping the gap sweeps the service from a
/// mostly-idle chip to saturation. Deterministic per
/// `(kind, count, mean_gap_cycles, seed)`.
pub fn poisson_trace(
    name: &str,
    kind: WorkloadKind,
    count: usize,
    mean_gap_cycles: f64,
    seed: u64,
) -> ArrivalTrace {
    assert!(
        mean_gap_cycles > 0.0,
        "mean inter-arrival gap must be positive, got {mean_gap_cycles}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    let mut apps = Vec::with_capacity(count);
    let mut arrivals = Vec::with_capacity(count);
    for _ in 0..count {
        at += exp_gap(&mut rng, mean_gap_cycles);
        arrivals.push(at as u64);
        apps.push(trace_app(&mut rng, kind));
    }
    ArrivalTrace {
        name: name.to_string(),
        kind,
        apps,
        arrivals,
    }
}

/// A bursty (diurnal) arrival trace: Poisson arrivals whose rate follows a
/// square wave of period `period_cycles` — during the first half of each
/// period (the *storm*) the mean gap is `mean_gap_cycles / burstiness`,
/// during the second half (the *lull*) it is `mean_gap_cycles *
/// burstiness`. `burstiness = 1.0` degenerates to [`poisson_trace`];
/// `burstiness = 4.0` concentrates ~94% of arrivals into the storms. This
/// is the overload generator: storms overfill the chip and exercise the
/// admission queue and shedding path, lulls let it drain. Deterministic
/// per `(kind, count, rate params, seed)`.
pub fn bursty_trace(
    name: &str,
    kind: WorkloadKind,
    count: usize,
    mean_gap_cycles: f64,
    burstiness: f64,
    period_cycles: u64,
    seed: u64,
) -> ArrivalTrace {
    assert!(
        mean_gap_cycles > 0.0,
        "mean inter-arrival gap must be positive, got {mean_gap_cycles}"
    );
    assert!(burstiness >= 1.0, "burstiness must be >= 1.0");
    assert!(period_cycles >= 2, "period must be at least 2 cycles");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    let mut apps = Vec::with_capacity(count);
    let mut arrivals = Vec::with_capacity(count);
    for _ in 0..count {
        let storm = (at as u64) % period_cycles < period_cycles / 2;
        let mean = if storm {
            mean_gap_cycles / burstiness
        } else {
            mean_gap_cycles * burstiness
        };
        at += exp_gap(&mut rng, mean);
        arrivals.push(at as u64);
        apps.push(trace_app(&mut rng, kind));
    }
    ArrivalTrace {
        name: name.to_string(),
        kind,
        apps,
        arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::expected_group;

    #[test]
    fn suite_has_20_workloads_of_8_apps() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 20);
        for w in &suite {
            assert_eq!(w.apps.len(), WORKLOAD_SIZE, "{}", w.name);
            for a in &w.apps {
                assert!(expected_group(a).is_some(), "unknown app {a} in {}", w.name);
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(standard_suite(), standard_suite());
    }

    #[test]
    fn poisson_trace_is_deterministic_sorted_and_known() {
        let t = poisson_trace("ln0", WorkloadKind::Mixed, 100, 20_000.0, 0xA11CE);
        assert_eq!(
            t,
            poisson_trace("ln0", WorkloadKind::Mixed, 100, 20_000.0, 0xA11CE)
        );
        assert_eq!(t.len(), 100);
        assert!(t.arrivals.windows(2).all(|w| w[0] <= w[1]));
        for a in &t.apps {
            assert!(expected_group(a).is_some(), "unknown app {a}");
        }
        // The empirical mean gap should be in the ballpark of the target
        // (loose bound: 100 exponential draws).
        let mean = t.span() as f64 / t.len() as f64;
        assert!(
            (10_000.0..40_000.0).contains(&mean),
            "empirical mean gap {mean} far from the 20_000 target"
        );
        // A different seed yields a different trace.
        assert_ne!(
            t,
            poisson_trace("ln0", WorkloadKind::Mixed, 100, 20_000.0, 0xB0B)
        );
    }

    #[test]
    fn bursty_trace_concentrates_arrivals_into_storms() {
        let period = 400_000u64;
        let t = bursty_trace("bn0", WorkloadKind::Mixed, 400, 10_000.0, 4.0, period, 7);
        assert_eq!(
            t,
            bursty_trace("bn0", WorkloadKind::Mixed, 400, 10_000.0, 4.0, period, 7)
        );
        assert!(t.arrivals.windows(2).all(|w| w[0] <= w[1]));
        let in_storm = t
            .arrivals
            .iter()
            .filter(|&&a| a % period < period / 2)
            .count();
        assert!(
            in_storm * 4 > t.len() * 3,
            "only {in_storm}/{} arrivals fell in storms",
            t.len()
        );
        // burstiness = 1 degenerates to plain Poisson.
        assert_eq!(
            bursty_trace("x", WorkloadKind::Mixed, 50, 10_000.0, 1.0, period, 9).arrivals,
            poisson_trace("x", WorkloadKind::Mixed, 50, 10_000.0, 9).arrivals
        );
    }

    #[test]
    fn trace_round_trips_to_a_workload() {
        let t = poisson_trace("ln1", WorkloadKind::BackendIntensive, 10, 5_000.0, 3);
        let w = t.to_workload();
        assert_eq!(w.apps, t.apps);
        assert_eq!(w.arrivals, t.arrivals);
        assert!(w.target_scale.is_empty());
    }

    #[test]
    fn fb2_matches_paper_arrival_order() {
        let fb2 = by_name("fb2").unwrap();
        assert_eq!(
            fb2.apps,
            vec![
                "lbm_r",
                "mcf",
                "cactuBSSN_r",
                "mcf",
                "leela_r",
                "leela_r",
                "astar",
                "mcf_r"
            ]
        );
    }

    #[test]
    fn backend_workloads_follow_recipe() {
        for w in standard_suite()
            .iter()
            .filter(|w| w.kind == WorkloadKind::BackendIntensive)
        {
            let n_be = w
                .apps
                .iter()
                .filter(|a| expected_group(a) == Some(Group::BackendBound))
                .count();
            assert!((5..=6).contains(&n_be), "{}: {n_be} backend apps", w.name);
            let n_fe = w
                .apps
                .iter()
                .filter(|a| expected_group(a) == Some(Group::FrontendBound))
                .count();
            assert_eq!(n_fe, 0, "{}: backend workloads draw from BE+others", w.name);
        }
    }

    #[test]
    fn mixed_workloads_are_half_and_half() {
        for w in standard_suite()
            .iter()
            .filter(|w| w.kind == WorkloadKind::Mixed)
        {
            let n_be = w
                .apps
                .iter()
                .filter(|a| expected_group(a) == Some(Group::BackendBound))
                .count();
            let n_fe = w
                .apps
                .iter()
                .filter(|a| expected_group(a) == Some(Group::FrontendBound))
                .count();
            assert_eq!(n_be, 4, "{}", w.name);
            assert_eq!(n_fe, 4, "{}", w.name);
        }
    }

    #[test]
    fn random_workload_is_sized_and_deterministic() {
        for size in [8, 16, 28, 56] {
            let a = random_workload("w", WorkloadKind::Mixed, size, 42);
            let b = random_workload("w", WorkloadKind::Mixed, size, 42);
            assert_eq!(a, b, "same seed, same workload");
            assert_eq!(a.apps.len(), size);
            for app in &a.apps {
                assert!(expected_group(app).is_some(), "unknown app {app}");
            }
            let c = random_workload("w", WorkloadKind::Mixed, size, 43);
            assert_ne!(a.apps, c.apps, "different seed, different mix");
        }
    }

    #[test]
    fn full_chip_suite_covers_all_families_at_56() {
        let suite = full_chip_suite(6, 56, 0xF0C1);
        assert_eq!(suite.len(), 6);
        for (i, w) in suite.iter().enumerate() {
            assert_eq!(w.name, format!("fc{i}"));
            assert_eq!(w.apps.len(), 56);
        }
        let kinds: std::collections::HashSet<_> = suite.iter().map(|w| w.kind).collect();
        assert_eq!(kinds.len(), 3, "all three families appear");
        // Family recipes hold at 56 apps too.
        for w in &suite {
            let count = |g: Group| {
                w.apps
                    .iter()
                    .filter(|a| expected_group(a) == Some(g))
                    .count()
            };
            match w.kind {
                WorkloadKind::Mixed => {
                    assert_eq!(count(Group::BackendBound), 28, "{}", w.name);
                    assert_eq!(count(Group::FrontendBound), 28, "{}", w.name);
                }
                WorkloadKind::BackendIntensive => {
                    let n = count(Group::BackendBound);
                    assert!((35..=42).contains(&n), "{}: {n} backend apps", w.name);
                    assert_eq!(count(Group::FrontendBound), 0, "{}", w.name);
                }
                WorkloadKind::FrontendIntensive => {
                    let n = count(Group::FrontendBound);
                    assert!((35..=42).contains(&n), "{}: {n} frontend apps", w.name);
                    assert_eq!(count(Group::BackendBound), 0, "{}", w.name);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_workload_size_panics() {
        random_workload("w", WorkloadKind::Mixed, 7, 1);
    }

    #[test]
    fn partial_occupancy_workload_is_smaller_than_slots() {
        let w = partial_occupancy_workload("half", WorkloadKind::Mixed, 28, 56, 7);
        assert_eq!(w.apps.len(), 28);
        assert!(w.arrivals.is_empty());
        assert_eq!(w.arrival(5), 0, "unset arrivals default to cycle 0");
        for a in &w.apps {
            assert!(expected_group(a).is_some(), "unknown app {a}");
        }
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn partial_occupancy_beyond_slots_panics() {
        partial_occupancy_workload("bad", WorkloadKind::Mixed, 58, 56, 7);
    }

    #[test]
    fn phase_shifted_workload_arrives_in_even_waves() {
        let w = phase_shifted_workload("wave", WorkloadKind::Mixed, 56, 4, 50_000, 9);
        assert_eq!(w.apps.len(), 56);
        assert_eq!(w.arrivals.len(), 56);
        for (k, &a) in w.arrivals.iter().enumerate() {
            assert_eq!(a, (k / 14) as u64 * 50_000, "wave of app {k}");
        }
        // The mix itself matches the unshifted generator for the same seed:
        // arrivals layer on top, they don't disturb the RNG stream.
        let plain = random_workload("wave", WorkloadKind::Mixed, 56, 9);
        assert_eq!(w.apps, plain.apps);
    }

    #[test]
    #[should_panic(expected = "waves")]
    fn uneven_waves_panic() {
        phase_shifted_workload("bad", WorkloadKind::Mixed, 8, 3, 1_000, 1);
    }

    #[test]
    fn heterogeneous_workload_alternates_target_scales() {
        let w = heterogeneous_workload("het", WorkloadKind::Mixed, 56, 0.5, 2.0, 11);
        assert_eq!(w.apps.len(), 56);
        assert_eq!(w.target_scale.len(), 56);
        for k in 0..56 {
            let expect = if k % 2 == 0 { 0.5 } else { 2.0 };
            assert_eq!(w.target_scale(k), expect, "app {k}");
        }
        // Scales layer on top of the mix: the apps match the plain twin.
        let plain = random_workload("het", WorkloadKind::Mixed, 56, 11);
        assert_eq!(w.apps, plain.apps);
        assert_eq!(plain.target_scale(7), 1.0, "unset scales default to 1.0");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_target_scale_panics() {
        heterogeneous_workload("bad", WorkloadKind::Mixed, 8, 0.0, 2.0, 1);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = standard_suite().into_iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
