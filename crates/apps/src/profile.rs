//! Phase-based application profiles.
//!
//! An [`AppProfile`] is a named sequence of execution phases that repeats
//! cyclically until the launch's target instruction count is reached. The
//! profile implements [`ThreadProgram`], which is the only interface the
//! simulator (and hence the SYNPA policy) ever sees — matching the paper's
//! setting where applications are opaque and only their PMU signature is
//! observable.

use synpa_sim::{PhaseParams, ThreadProgram};

/// One phase: `instructions` retired µops during which `params` applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Retired instructions this phase lasts before the next begins.
    pub instructions: u64,
    /// Demand parameters in effect during the phase.
    pub params: PhaseParams,
}

/// A named application model built from repeating phases.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    name: String,
    phases: Vec<Phase>,
    cycle_len: u64,
    /// Target instructions per launch (the paper's §V-B target count).
    length: u64,
}

impl AppProfile {
    /// Builds a profile. Panics if `phases` is empty or any phase has zero
    /// instructions.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>, length: u64) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        assert!(
            phases.iter().all(|p| p.instructions > 0),
            "phases must be non-empty"
        );
        let cycle_len = phases.iter().map(|p| p.instructions).sum();
        Self {
            name: name.into(),
            phases,
            cycle_len,
            length,
        }
    }

    /// Single-phase convenience constructor.
    pub fn uniform(name: impl Into<String>, params: PhaseParams, length: u64) -> Self {
        Self::new(
            name,
            vec![Phase {
                instructions: 1,
                params,
            }],
            length,
        )
    }

    /// Returns a copy with a different launch length. Used once the target
    /// instruction count has been measured (60 s isolated run in the paper).
    pub fn with_length(mut self, length: u64) -> Self {
        self.length = length;
        self
    }

    /// The phases, in cycle order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total instructions in one pass over all phases.
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }
}

impl ThreadProgram for AppProfile {
    fn phase_at(&self, retired: u64) -> PhaseParams {
        let mut pos = retired % self.cycle_len;
        for p in &self.phases {
            if pos < p.instructions {
                return p.params;
            }
            pos -= p.instructions;
        }
        // Unreachable: pos < cycle_len = sum(instructions).
        self.phases[0].params
    }

    fn length(&self) -> u64 {
        self.length
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(mem_ratio: f64) -> PhaseParams {
        PhaseParams {
            mem_ratio,
            ..PhaseParams::compute()
        }
    }

    #[test]
    fn phase_lookup_follows_boundaries() {
        let p = AppProfile::new(
            "x",
            vec![
                Phase {
                    instructions: 100,
                    params: params(0.1),
                },
                Phase {
                    instructions: 50,
                    params: params(0.5),
                },
            ],
            10_000,
        );
        assert_eq!(p.phase_at(0).mem_ratio, 0.1);
        assert_eq!(p.phase_at(99).mem_ratio, 0.1);
        assert_eq!(p.phase_at(100).mem_ratio, 0.5);
        assert_eq!(p.phase_at(149).mem_ratio, 0.5);
    }

    #[test]
    fn phases_repeat_cyclically() {
        let p = AppProfile::new(
            "x",
            vec![
                Phase {
                    instructions: 10,
                    params: params(0.1),
                },
                Phase {
                    instructions: 10,
                    params: params(0.9),
                },
            ],
            1_000_000,
        );
        assert_eq!(p.phase_at(20).mem_ratio, 0.1);
        assert_eq!(p.phase_at(35).mem_ratio, 0.9);
        assert_eq!(p.phase_at(20_000_015).mem_ratio, 0.9);
    }

    #[test]
    fn uniform_has_single_phase() {
        let p = AppProfile::uniform("u", params(0.2), 500);
        assert_eq!(p.phases().len(), 1);
        assert_eq!(p.length(), 500);
        assert_eq!(p.phase_at(12345).mem_ratio, 0.2);
    }

    #[test]
    fn with_length_overrides() {
        let p = AppProfile::uniform("u", params(0.2), 500).with_length(99);
        assert_eq!(p.length(), 99);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        AppProfile::new("bad", vec![], 1);
    }
}
