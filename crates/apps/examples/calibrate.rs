//! Calibration report: isolated characterization of all 28 applications
//! with extended stall attribution, checked against their Table III groups.
//! The tuning tool used to fit the synthetic app models to the paper's
//! Fig. 4 (see crates/apps/tests/table3_fidelity.rs for the enforced form).

use synpa_apps::{characterize_isolated, spec};
use synpa_sim::{Chip, ChipConfig, Slot, ThreadProgram};

fn main() {
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6}",
        "app",
        "FD%",
        "FE%",
        "BE%",
        "IPC",
        "dcach",
        "robfl",
        "iqful",
        "lsq",
        "width",
        "l1dMR",
        "l1iMR"
    );
    let mut bad = 0;
    for app in spec::catalog() {
        let r = characterize_isolated(&app, 80_000, 120_000);
        let f = r.fractions;
        let got = f.group();
        let want = spec::expected_group(app.name()).unwrap();
        // re-run to get ext counters
        let mut cfg = ChipConfig::thunderx2(1);
        cfg.cores = 1;
        let mut chip = Chip::new(cfg);
        chip.attach(Slot(0), 0, Box::new(app.clone().with_length(u64::MAX)));
        chip.run_cycles(80_000);
        let before = *chip.pmu_of(0).unwrap();
        chip.run_cycles(120_000);
        let d = chip.pmu_of(0).unwrap().delta_since(&before);
        let c = d.cpu_cycles as f64;
        println!("{:<14} {:>5.1}% {:>5.1}% {:>5.1}% {:>6.2} | {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% | {:>5.1}% {:>5.1}% {}",
            app.name(), f.full_dispatch*100.0, f.frontend*100.0, f.backend*100.0, r.ipc,
            d.ext.stall_dcache as f64/c*100.0, d.ext.stall_rob_full as f64/c*100.0,
            d.ext.stall_iq_full as f64/c*100.0, d.ext.stall_lsq_full as f64/c*100.0,
            d.ext.stall_width as f64/c*100.0,
            d.ext.l1d_miss as f64 / d.ext.l1d_access.max(1) as f64 * 100.0,
            d.ext.l1i_miss as f64 / d.ext.l1i_access.max(1) as f64 * 100.0,
            if got==want {""} else {"<-- MISMATCH"});
        if got != want {
            bad += 1;
        }
    }
    println!("\nmismatches: {bad}/28");
}
