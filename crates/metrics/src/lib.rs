//! # synpa-metrics — multiprogram evaluation metrics
//!
//! The system-level metrics of the paper's evaluation (§VI), following
//! Eyerman & Eeckhout's "System-Level Performance Metrics for Multiprogram
//! Workloads":
//!
//! * turnaround-time speedup (Fig. 5),
//! * fairness `1 − σ/µ` over individual speedups (Fig. 8),
//! * workload IPC as the geometric mean of per-app IPCs (Fig. 9),
//! * ANTT and STP as supplementary metrics,
//! * basic statistics (mean, geomean, stdev, coefficient of variation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Arithmetic mean; 0 for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two points.
pub fn stdev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean; panics if any element is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean requires positive values"
    );
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Coefficient of variation σ/µ; 0 when the mean is 0.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        stdev(xs) / m
    }
}

/// Turnaround-time speedup of a policy over the baseline: `tt_base /
/// tt_policy` (> 1 when the policy is faster). The Fig. 5 quantity.
pub fn tt_speedup(tt_baseline: f64, tt_policy: f64) -> f64 {
    assert!(tt_policy > 0.0, "turnaround time must be positive");
    tt_baseline / tt_policy
}

/// Fairness of a workload execution (§VI-D, after [24]):
/// `1 − σ(IS) / µ(IS)` over the individual speedups `IS_k = IPC_smt,k /
/// IPC_solo,k`. 1 = perfectly fair; lower = some applications progress
/// disproportionately slowly.
pub fn fairness(individual_speedups: &[f64]) -> f64 {
    assert!(!individual_speedups.is_empty());
    1.0 - coefficient_of_variation(individual_speedups)
}

/// Workload IPC as the geometric mean of per-application IPCs (Fig. 9).
pub fn workload_ipc(ipcs: &[f64]) -> f64 {
    geomean(ipcs)
}

/// Average normalized turnaround time: the arithmetic mean of per-app
/// slowdowns (`1 / IS_k`). Lower is better.
pub fn antt(individual_speedups: &[f64]) -> f64 {
    assert!(individual_speedups.iter().all(|&s| s > 0.0));
    mean(
        &individual_speedups
            .iter()
            .map(|s| 1.0 / s)
            .collect::<Vec<_>>(),
    )
}

/// System throughput: the sum of individual speedups (a.k.a. weighted
/// speedup). Higher is better; equals the thread count with zero
/// interference.
pub fn stp(individual_speedups: &[f64]) -> f64 {
    individual_speedups.iter().sum()
}

/// Nearest-rank percentile of an (unsorted) integer sample: the smallest
/// element such that at least `p`% of the sample is ≤ it. `p` must be in
/// `(0, 100]`; an empty sample has no percentile and yields `None` — a
/// run where nothing completed must show "no data", not a fabricated
/// zero-cycle latency. The open-system latency metric (p50/p95/p99
/// turnaround) — nearest-rank keeps the result an actual observation, so
/// tables stay in whole cycles and byte-stable across platforms (no
/// interpolation arithmetic).
pub fn percentile(sample: &[u64], p: f64) -> Option<u64> {
    assert!(
        p > 0.0 && p <= 100.0,
        "percentile must be in (0, 100], got {p}"
    );
    if sample.is_empty() {
        return None;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stdev_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stdev(&[5.0, 5.0, 5.0]), 0.0);
        assert!((stdev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn fairness_is_one_for_equal_speedups() {
        assert!((fairness(&[0.6, 0.6, 0.6]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_drops_with_spread() {
        let even = fairness(&[0.5, 0.5, 0.5, 0.5]);
        let uneven = fairness(&[0.9, 0.5, 0.3, 0.2]);
        assert!(uneven < even);
        assert!(uneven < 1.0);
    }

    #[test]
    fn tt_speedup_direction() {
        assert!((tt_speedup(200.0, 100.0) - 2.0).abs() < 1e-12);
        assert!(tt_speedup(100.0, 200.0) < 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [15, 20, 35, 40, 50];
        assert_eq!(percentile(&xs, 30.0), Some(20)); // classic nearest-rank example
        assert_eq!(percentile(&xs, 40.0), Some(20));
        assert_eq!(percentile(&xs, 50.0), Some(35));
        assert_eq!(percentile(&xs, 100.0), Some(50));
        assert_eq!(percentile(&[7], 99.0), Some(7));
        assert_eq!(percentile(&[], 50.0), None, "no sample, no percentile");
        // Order-free: the sample need not be sorted.
        assert_eq!(percentile(&[50, 15, 40, 20, 35], 50.0), Some(35));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_zero_p() {
        percentile(&[1, 2, 3], 0.0);
    }

    #[test]
    fn antt_is_mean_slowdown() {
        // speedups 0.5 -> slowdown 2; 1.0 -> 1 => ANTT 1.5.
        assert!((antt(&[0.5, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stp_sums_speedups() {
        assert!((stp(&[0.5, 0.7, 0.8]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_mean_is_zero() {
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn geomean_of_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_singleton_is_the_value() {
        assert!((geomean(&[3.25]) - 3.25).abs() < 1e-12);
        assert!((geomean(&[1e-9]) - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn tt_speedup_identity() {
        for tt in [1.0, 123.456, 3e8] {
            assert!((tt_speedup(tt, tt) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tt_speedup_rejects_zero_policy_time() {
        tt_speedup(100.0, 0.0);
    }

    #[test]
    fn fairness_of_singleton_is_one() {
        // One application has zero spread by definition.
        assert_eq!(fairness(&[0.7]), 1.0);
    }

    proptest::proptest! {
        #[test]
        fn fairness_in_unit_interval_for_bounded_spread(
            base in 0.1f64..1.0,
            ratios in proptest::collection::vec(1.0f64..2.0, 2..10),
        ) {
            // Speedups within a 2x band: |x - mean| <= min <= mean, so the
            // CV is at most 1 and fairness lands in [0, 1]. (Wilder spreads
            // can push the CV above 1, so no global lower bound exists.)
            let xs: Vec<f64> = ratios.iter().map(|r| base * r).collect();
            let f = fairness(&xs);
            proptest::prop_assert!(f <= 1.0 + 1e-12, "fairness {f} above 1");
            proptest::prop_assert!(f >= -1e-12, "fairness {f} below 0 for 2x spread");
        }
    }

    proptest::proptest! {
        #[test]
        fn fairness_bounded_above_by_one(xs in proptest::collection::vec(0.01f64..2.0, 2..10)) {
            proptest::prop_assert!(fairness(&xs) <= 1.0 + 1e-12);
        }

        #[test]
        fn geomean_le_mean(xs in proptest::collection::vec(0.01f64..10.0, 1..10)) {
            // AM-GM inequality.
            proptest::prop_assert!(geomean(&xs) <= mean(&xs) + 1e-9);
        }

        #[test]
        fn stp_at_most_thread_count(xs in proptest::collection::vec(0.01f64..1.0, 1..10)) {
            // Individual speedups under interference are <= 1.
            proptest::prop_assert!(stp(&xs) <= xs.len() as f64);
        }
    }
}
