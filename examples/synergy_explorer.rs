//! Synergy explorer: measure how synergistic two applications are when
//! co-scheduled on one SMT2 core — the quantity SYNPA's model predicts.
//!
//! ```text
//! cargo run --release --example synergy_explorer -- mcf gobmk
//! cargo run --release --example synergy_explorer            # full matrix
//! ```

use synpa::counters::SamplingSession;
use synpa::prelude::*;
use synpa::sim::ThreadProgram;

const WARMUP: u64 = 60_000;
const MEASURE: u64 = 100_000;

fn solo_ipc(name: &str) -> f64 {
    let app = spec::by_name(name).unwrap_or_else(|| die(name));
    let mut chip = Chip::new(ChipConfig::thunderx2(1));
    chip.attach(Slot(0), 0, Box::new(app.with_length(u64::MAX)));
    chip.run_cycles(WARMUP);
    let mut s = SamplingSession::new();
    s.sample(&chip, &[0]);
    chip.run_cycles(MEASURE);
    let d = &s.sample(&chip, &[0])[0].1;
    d.inst_retired as f64 / d.cpu_cycles as f64
}

/// Runs `a` and `b` together; returns each one's slowdown vs. solo and the
/// measured dispatch-stall fractions.
fn co_run(a: &str, b: &str, solo_a: f64, solo_b: f64) -> ((f64, Fractions), (f64, Fractions)) {
    let mut chip = Chip::new(ChipConfig::thunderx2(1));
    chip.attach(
        Slot(0),
        0,
        Box::new(spec::by_name(a).unwrap().with_length(u64::MAX)),
    );
    chip.attach(
        Slot(1),
        1,
        Box::new(spec::by_name(b).unwrap().with_length(u64::MAX)),
    );
    chip.run_cycles(WARMUP);
    let mut s = SamplingSession::new();
    s.sample(&chip, &[0, 1]);
    chip.run_cycles(MEASURE);
    let d = s.sample(&chip, &[0, 1]);
    let width = chip.config().core.dispatch_width;
    let ipc = |i: usize| d[i].1.inst_retired as f64 / d[i].1.cpu_cycles as f64;
    (
        (solo_a / ipc(0), Fractions::from_pmu(&d[0].1, width)),
        (solo_b / ipc(1), Fractions::from_pmu(&d[1].1, width)),
    )
}

fn die(name: &str) -> ! {
    eprintln!("unknown application '{name}'. Known:");
    for app in spec::catalog() {
        eprintln!("  {}", app.name());
    }
    std::process::exit(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [a, b] => {
            let (sa, sb) = (solo_ipc(a), solo_ipc(b));
            let ((slow_a, frac_a), (slow_b, frac_b)) = co_run(a, b, sa, sb);
            println!("pair {a} + {b} on one SMT2 core:");
            for (name, slow, f) in [(a, slow_a, frac_a), (b, slow_b, frac_b)] {
                println!(
                    "  {name:<14} slowdown {slow:>5.2}x   FD {:>5.1}%  FE {:>5.1}%  BE {:>5.1}%",
                    f.full_dispatch * 100.0,
                    f.frontend * 100.0,
                    f.backend * 100.0
                );
            }
            println!(
                "  pair cost (sum of slowdowns, lower = more synergistic): {:.2}",
                slow_a + slow_b
            );
        }
        [] => {
            // Compact matrix over one representative app per group.
            let names = ["mcf", "lbm_r", "xalancbmk_r", "gobmk", "leela_r", "nab_r"];
            let solos: Vec<f64> = names.iter().map(|n| solo_ipc(n)).collect();
            print!("{:<14}", "pair cost");
            for b in names {
                print!("{b:>13}");
            }
            println!();
            for (i, a) in names.iter().enumerate() {
                print!("{a:<14}");
                for (j, b) in names.iter().enumerate() {
                    if j < i {
                        print!("{:>13}", "");
                        continue;
                    }
                    let ((x, _), (y, _)) = co_run(a, b, solos[i], solos[j]);
                    print!("{:>13.2}", x + y);
                }
                println!();
            }
            println!("\n(lower = more synergistic; diagonal = two instances of the same app)");
        }
        _ => {
            eprintln!("usage: synergy_explorer [<app-a> <app-b>]");
            std::process::exit(2);
        }
    }
}
