//! Custom workload: the paper notes the model "needs to be re-trained with
//! the new applications" when workloads differ from SPEC-like behaviour.
//! This example builds two applications that do not exist in the catalog —
//! a garbage-collected-language-like app with alternating mutator/GC phases
//! and a sparse-graph traversal — trains a model that includes them, and
//! schedules a custom 8-app workload.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use synpa::apps::Phase;
use synpa::prelude::*;
use synpa::sim::PhaseParams;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// A managed-runtime-like application: long mutator phases with big code
/// and branchy behaviour, punctuated by GC phases that sweep a large heap.
fn gc_language_app() -> AppProfile {
    AppProfile::new(
        "gc_lang",
        vec![
            Phase {
                // Mutator: frontend-ish.
                instructions: 60_000,
                params: PhaseParams {
                    mem_ratio: 0.2,
                    data_footprint: 96 * KB,
                    data_seq: 0.4,
                    code_footprint: 48 * KB,
                    code_hot: 0.86,
                    br_misp_rate: 0.005,
                    exec_latency: 1,
                    mlp: 0.6,
                },
            },
            Phase {
                // GC sweep: memory streaming over the whole heap.
                instructions: 20_000,
                params: PhaseParams {
                    mem_ratio: 0.4,
                    data_footprint: 2 * MB,
                    data_seq: 0.8,
                    code_footprint: 4 * KB,
                    code_hot: 1.0,
                    br_misp_rate: 0.001,
                    exec_latency: 1,
                    mlp: 0.7,
                },
            },
        ],
        200_000,
    )
}

/// A sparse-graph traversal: pointer chasing over a large arena.
fn graph_app() -> AppProfile {
    AppProfile::uniform(
        "graph_walk",
        PhaseParams {
            mem_ratio: 0.30,
            data_footprint: 3 * MB,
            data_seq: 0.05,
            code_footprint: 6 * KB,
            code_hot: 0.98,
            br_misp_rate: 0.004,
            exec_latency: 1,
            mlp: 0.2,
        },
        200_000,
    )
}

fn main() {
    // Training set: a slice of the SPEC-like catalog PLUS the new apps
    // (the paper: re-train when application behaviour changes).
    let mut training: Vec<AppProfile> = spec::catalog().into_iter().step_by(2).collect();
    training.push(gc_language_app());
    training.push(graph_app());
    println!("training on {} apps (incl. 2 custom)...", training.len());
    let model = train(&training, &TrainingConfig::default(), 8)
        .expect("catalog fits")
        .model;

    // A custom workload mixing catalog and custom applications. Note the
    // runner works from app *models*, so custom apps slot in like any other.
    let custom_apps = vec![
        gc_language_app(),
        spec::by_name("mcf").unwrap(),
        graph_app(),
        spec::by_name("lbm_r").unwrap(),
        gc_language_app(),
        spec::by_name("gobmk").unwrap(),
        graph_app(),
        spec::by_name("nab_r").unwrap(),
    ];

    // Calibrate launch targets manually (prepare_workload only knows the
    // catalog by name).
    let cfg = ExperimentConfig {
        reps: 3,
        ..Default::default()
    };
    let mut apps = Vec::new();
    let mut solo = Vec::new();
    for app in &custom_apps {
        let run = synpa::apps::characterize_isolated_with(
            app,
            cfg.calibration_warmup,
            cfg.target_window,
            &cfg.manager.chip,
        );
        apps.push(app.clone().with_length(run.retired.max(1)));
        solo.push(run.ipc);
    }

    let mut linux_tt = Vec::new();
    let mut synpa_tt = Vec::new();
    for rep in 0..cfg.reps as u64 {
        let mut mgr = cfg.manager.clone();
        mgr.chip = mgr.chip.clone().with_seed(cfg.base_seed + rep);
        let linux = run_workload(&apps, &solo, &mut LinuxLike, &mgr);
        let mut policy = Synpa::new(model);
        let synpa = run_workload(&apps, &solo, &mut policy, &mgr);
        linux_tt.push(linux.tt_cycles as f64);
        synpa_tt.push(synpa.tt_cycles as f64);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "custom workload: linux TT {:.0}, synpa TT {:.0}, speedup {:.3}x",
        mean(&linux_tt),
        mean(&synpa_tt),
        tt_speedup(mean(&linux_tt), mean(&synpa_tt))
    );
}
