//! Quickstart: train the SYNPA model, run one mixed workload under the
//! Linux-like baseline and under SYNPA, and compare the paper's three
//! metrics (turnaround time, fairness, IPC).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use synpa::prelude::*;

fn main() {
    // 1. Train the regression model on ~80 % of the applications
    //    (paper §IV-C). Takes a few seconds: 22 isolated profiles plus all
    //    253 SMT pair runs on the simulator.
    println!("training the 3-category model (paper §IV-C)...");
    let all = spec::catalog();
    let training_apps: Vec<AppProfile> = all
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 14 != 6 && i % 14 != 13) // hold out ~20 %
        .map(|(_, a)| a.clone())
        .collect();
    let report = train(&training_apps, &TrainingConfig::default(), 8).expect("catalog fits");
    println!("Table IV analogue (alpha, beta, gamma, rho):");
    for (name, c) in [
        ("full-dispatch", report.model.full_dispatch),
        ("frontend", report.model.frontend),
        ("backend", report.model.backend),
    ] {
        println!(
            "  {name:<14} {:+.4} {:+.4} {:+.4} {:+.4}",
            c.alpha, c.beta, c.gamma, c.rho
        );
    }

    // 2. Run the paper's case-study workload fb2 under both policies.
    let cfg = ExperimentConfig {
        reps: 5,
        ..Default::default()
    };
    let workload = workload::by_name("fb2").expect("fb2 is in the suite");
    println!("\nworkload fb2: {:?}", workload.apps);
    let prepared = prepare_workload(&workload, &cfg);

    let linux = run_cell(&prepared, |_| Box::new(LinuxLike), &cfg);
    let synpa = run_cell(&prepared, |_| Box::new(Synpa::new(report.model)), &cfg);

    // 3. The three metrics of §VI.
    println!("\n{:<22} {:>12} {:>12}", "metric", "linux", "synpa");
    println!(
        "{:<22} {:>12.0} {:>12.0}",
        "turnaround (cycles)", linux.tt_mean, synpa.tt_mean
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "fairness",
        fairness(&linux.app_speedup),
        fairness(&synpa.app_speedup)
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "IPC (geomean)",
        workload_ipc(&linux.app_ipc),
        workload_ipc(&synpa.app_ipc)
    );
    println!(
        "\nSYNPA turnaround speedup over Linux: {:.3}x",
        tt_speedup(linux.tt_mean, synpa.tt_mean)
    );
}
