//! Measures the evaluation-sweep orchestrator: sequential reference vs
//! sharded cold vs sharded warm (fully cached), on a mid-size sweep.
//!
//! This is the tool behind the BASELINES.md "suite orchestration" table.
//!
//! ```text
//! cargo run --release --example sweep_timing            # 6 workloads, 5 reps
//! cargo run --release --example sweep_timing -- 4 3     # 4 workloads, 3 reps
//! SYNPA_THREADS=8 cargo run --release --example sweep_timing
//! ```

use std::time::Instant;
use synpa::prelude::*;
use synpa_experiments::{
    canned_model, run_suite_sequential, run_suite_sharded, threads, SuitePolicy, SuiteSpec,
};

fn model() -> SynpaModel {
    canned_model()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_workloads: usize = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(6)
        .max(1);
    let reps: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5).max(1);
    let workers = threads();

    let workloads: Vec<Workload> = workload::standard_suite()
        .into_iter()
        .take(n_workloads)
        .collect();
    let config = ExperimentConfig {
        target_window: 100_000,
        calibration_warmup: 30_000,
        reps,
        ..Default::default()
    };
    let cache = std::env::temp_dir().join("synpa-sweep-timing");
    let _ = std::fs::remove_dir_all(&cache);
    let spec = |cache_dir| SuiteSpec {
        workloads: workloads.clone(),
        policies: vec![SuitePolicy::Linux, SuitePolicy::Synpa],
        config: config.clone(),
        cache_dir,
    };

    println!(
        "sweep: {} workloads x 2 policies, {} reps, {} workers",
        n_workloads, reps, workers
    );

    let t0 = Instant::now();
    let seq = run_suite_sequential(&spec(None), model());
    let t_seq = t0.elapsed();
    println!("sequential reference: {:>8.2}s", t_seq.as_secs_f64());

    let t0 = Instant::now();
    let cold = run_suite_sharded(&spec(Some(cache.clone())), model(), workers);
    let t_cold = t0.elapsed();
    println!("sharded cold:         {:>8.2}s", t_cold.as_secs_f64());

    let t0 = Instant::now();
    let warm = run_suite_sharded(&spec(Some(cache.clone())), model(), workers);
    let t_warm = t0.elapsed();
    println!("sharded warm (cache): {:>8.2}s", t_warm.as_secs_f64());

    let seq_json = serde_json::to_string_pretty(&seq).unwrap();
    assert_eq!(
        seq_json,
        serde_json::to_string_pretty(&cold).unwrap(),
        "sharded cold must equal sequential byte for byte"
    );
    assert_eq!(
        seq_json,
        serde_json::to_string_pretty(&warm).unwrap(),
        "sharded warm must equal sequential byte for byte"
    );
    println!("outputs byte-identical across all three paths");
    let _ = std::fs::remove_dir_all(&cache);
}
