//! Phase tracker: the Fig. 7 experiment as a living tool. Runs workload
//! fb2 under Linux and under SYNPA, then renders the per-quantum behaviour
//! of one application (default: the first `leela_r` instance) as an ASCII
//! strip — its dominant dispatch category, who it was paired with, and the
//! co-runner's dominant category.
//!
//! ```text
//! cargo run --release --example phase_tracker          # leela_r (04) in fb2
//! cargo run --release --example phase_tracker -- 5     # app index 5
//! ```

use synpa::prelude::*;
use synpa::sched::RunResult;

fn render(result: &RunResult, app: usize, names: &[String]) {
    println!(
        "policy {:<6} app {app} ({}), TT {} cycles, {} quanta",
        result.policy, names[app], result.per_app[app].tt_cycles, result.quanta
    );
    let rows: Vec<_> = result.trace.iter().filter(|r| r.app == app).collect();
    // One character per quantum: the app's dominant category
    // (F frontend / B backend / d full-dispatch).
    let strip: String = rows
        .iter()
        .map(|r| {
            let f = r.categories.fractions();
            if f[1] > f[2] && f[1] > f[0] {
                'F'
            } else if f[2] > f[0] {
                'B'
            } else {
                'd'
            }
        })
        .collect();
    println!("  behaviour : {strip}");
    // Co-runner identity per quantum (workload arrival index, one digit).
    let partners: String = rows
        .iter()
        .map(|r| char::from_digit(r.co_runner as u32 % 10, 10).unwrap())
        .collect();
    println!("  co-runner : {partners}");
    // Fraction of quanta paired with a complementary-behaving co-runner.
    let mut complementary = 0usize;
    let mut total = 0usize;
    for r in &rows {
        if let Some(partner) = result
            .trace
            .iter()
            .find(|p| p.quantum == r.quantum && p.app == r.co_runner)
        {
            total += 1;
            if r.is_frontend_behaving() != partner.is_frontend_behaving() {
                complementary += 1;
            }
        }
    }
    if total > 0 {
        println!(
            "  complementary pairings: {:.1}% of quanta",
            complementary as f64 / total as f64 * 100.0
        );
    }
}

fn main() {
    let app: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("app index 0..8"))
        .unwrap_or(4); // leela_r (04), the paper's Fig. 7 subject

    println!("training model...");
    let all = spec::catalog();
    let training: Vec<AppProfile> = all
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 14 != 6 && i % 14 != 13)
        .map(|(_, a)| a.clone())
        .collect();
    let model = train(&training, &TrainingConfig::default(), 8)
        .expect("catalog fits")
        .model;

    let cfg = ExperimentConfig {
        reps: 1,
        ..Default::default()
    };
    let workload = workload::by_name("fb2").unwrap();
    println!("workload fb2: {:?}\n", workload.apps);
    let prepared = prepare_workload(&workload, &cfg);

    let linux = run_cell(&prepared, |_| Box::new(LinuxLike), &cfg);
    render(&linux.exemplar, app, &workload.apps);
    println!();
    let synpa = run_cell(&prepared, |_| Box::new(Synpa::new(model)), &cfg);
    render(&synpa.exemplar, app, &workload.apps);
}
